//! The cluster-lifetime event loop.
//!
//! [`ClusterSim`] owns the composition: jobs arrive (Poisson, sized by the
//! Fig. 7 workload model), queue FIFO with backfill, get placed on the
//! [`hxalloc::BoardMesh`] with the paper's §IV-A heuristics, and then
//! *train*: each placed job's iteration time is measured by replaying its
//! `hxcollect::job_allreduce` schedule on its virtual sub-HxMesh inside
//! the [`hxsim`] flow engine (packet engine available for spot-checks).
//! Cable fail/repair events advance the network's failure epoch **during**
//! the run; every running job is then re-rated — progress is banked at the
//! old rate and the remainder proceeds at an iteration time re-measured on
//! the degraded (or repaired) network, served from a cache keyed on the
//! failure-set id so recurring sets cost one simulation total.
//!
//! Jobs are simulated in isolation even though they share the machine:
//! for HammingMesh this is the paper's §IV-A no-interference property
//! (traffic of a job placed on a virtual sub-HxMesh does not cross other
//! jobs' boards), so the approximation is exact on the healthy network
//! and only second-order under failures (failover detours can graze a
//! neighbor's lines). Queueing, placement, and failure dynamics — the
//! quantities this layer reports — are modeled exactly.

use crate::events::{Event, EventQueue};
use crate::job::{exponential_ps, sample_jobs, JobSpec};
use crate::metrics::{ClusterReport, JobRecord};
use hxalloc::workload::JobSizeDistribution;
use hxalloc::{AllocError, BoardMesh, Heuristics, Placement};
use hxcollect::allreduce::job_allreduce;
use hxcollect::simapp::ScheduleApp;
use hxnet::graph::FailureSetId;
use hxnet::hammingmesh::{HxCoord, HxMeshParams};
use hxnet::{Network, NodeId, PortId};
use hxsim::{simulate, EngineKind, FailureSchedule, LinkEventKind, SimConfig, SimStats};
use hxtelemetry::{CounterId, GaugeId, HistId, HistogramU64, Registry, Sampler, TraceSink};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::{BTreeMap, VecDeque};

/// Everything a cluster run is parameterized by.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// The machine: an `x * y` board mesh of `a * b` boards (one plane).
    pub mesh: HxMeshParams,
    /// Jobs submitted over the run.
    pub num_jobs: usize,
    /// Mean Poisson interarrival gap.
    pub mean_interarrival_ps: u64,
    /// Job-size distribution (defaults to the Fig. 7 calibration capped
    /// to the cluster).
    pub size_dist: JobSizeDistribution,
    /// Uniform range of training iterations per job.
    pub iters: (u32, u32),
    /// Gradient bytes per accelerator reduced each iteration.
    pub grad_bytes: u64,
    /// Compute time of one iteration (ps).
    pub compute_ps: u64,
    /// Fraction of communication overlappable with compute (§V-B):
    /// iteration = compute + comm - min(overlap * comm, compute).
    pub overlap: f64,
    /// Placement heuristics (§IV-A/B).
    pub heuristics: Heuristics,
    /// When the head-of-queue job is blocked but its boards would fit the
    /// free space, run the §IV-A-b checkpoint/restart defragmentation and
    /// retry (the "incremental re-packing" policy).
    pub defrag_on_block: bool,
    /// Mean gap between cable failures; `None` disables fault injection.
    pub mean_fail_interval_ps: Option<u64>,
    /// Mean repair time of a failed cable.
    pub mean_repair_ps: u64,
    /// Measure the iteration *interrupted* by each fail/repair event with
    /// an in-situ [`FailureSchedule`] — the event lands mid-flight at the
    /// job's fractional position, flows re-route (or packets retransmit)
    /// inside the simulation, and the extra cost over the frozen-epoch
    /// model is charged to that job once. `false` (the default) keeps the
    /// classic frozen-epoch re-rate and byte-identical legacy output.
    pub in_situ_failures: bool,
    /// Simulation backend for iteration timing.
    pub engine: EngineKind,
    /// Master seed: arrivals, sizes, failure draws, and the network
    /// simulator's tie-breaking all derive from it.
    pub seed: u64,
}

impl ClusterConfig {
    /// Quick-scale default: an 8x8 Hx2Mesh (64 boards, 256 accelerators),
    /// 40 jobs, fail/repair churn fast enough that several epochs land
    /// inside the run. Finishes in seconds on the flow engine.
    pub fn quick() -> Self {
        let mesh = HxMeshParams::square(2, 8);
        let boards = mesh.x * mesh.y;
        Self {
            mesh,
            num_jobs: 40,
            mean_interarrival_ps: 40 * MS,
            size_dist: JobSizeDistribution::for_cluster(boards),
            iters: (40, 120),
            grad_bytes: 1 << 20,
            compute_ps: 2 * MS,
            overlap: 0.8,
            heuristics: Heuristics::all(),
            defrag_on_block: true,
            mean_fail_interval_ps: Some(200 * MS),
            mean_repair_ps: 150 * MS,
            in_situ_failures: false,
            engine: EngineKind::Flow,
            seed: 0xC0FFEE,
        }
    }
}

const MS: u64 = 1_000_000_000;

/// A placed, training job.
#[derive(Debug)]
struct Running {
    spec: JobSpec,
    placement: Placement,
    start_ps: u64,
    /// Iterations finished as of `last_update_ps` (fractional: an epoch
    /// change banks partial progress).
    done_iters: f64,
    last_update_ps: u64,
    /// Current full iteration time (compute + exposed communication).
    iter_ps: u64,
    /// Communication part of the current iteration (pre-overlap), kept so
    /// an in-situ event can be placed at the job's fractional position
    /// inside the communication phase.
    comm_ps: u64,
    /// Busy directed-link picoseconds one iteration contributes.
    busy_per_iter: u64,
    /// Invalidates stale completion events after a re-rate.
    generation: u32,
    resims: u32,
}

type IterKey = (Vec<usize>, Vec<usize>, FailureSetId, u64);

/// The cluster simulator. Build with [`ClusterSim::new`], consume with
/// [`ClusterSim::run`].
pub struct ClusterSim {
    cfg: ClusterConfig,
    net: Network,
    mesh: BoardMesh,
    jobs: Vec<JobSpec>,
    queue: VecDeque<u32>,
    /// Keyed and iterated in job-id order (a BTreeMap): metric sums and
    /// re-rates walk this map, and float summation order must not depend
    /// on hash-map iteration for runs to reproduce byte-identically.
    running: BTreeMap<u32, Running>,
    events: EventQueue,
    /// Iteration-time memo: (placement rows, cols, failure set, bytes) ->
    /// (communication ps, busy link-ps). The failure-set key means a
    /// fail -> repair cycle returning to a seen set costs no simulation.
    iter_cache: BTreeMap<IterKey, (u64, u64)>,
    records: BTreeMap<u32, JobRecord>,
    fail_rng: StdRng,
    // Metric integrals over time.
    last_metric_ps: u64,
    frag_integral: f64,
    util_integral: f64,
    busy_link_ps: f64,
    fail_events: u32,
    repair_events: u32,
    resims: u32,
    defrag_passes: u32,
    sim_invocations: u32,
    /// Flow re-routes observed inside in-situ interrupted-iteration sims.
    flows_rerouted: u64,
    // Telemetry. The enabled flags are cached at construction so every
    // hot-path site costs one branch when the channels are off.
    sink: TraceSink,
    tel_metrics: bool,
    tel_any: bool,
    reg: Registry,
    sampler: Sampler,
    c_jobs_queued: CounterId,
    c_jobs_placed: CounterId,
    c_jobs_preempted: CounterId,
    c_cable_fails: CounterId,
    c_cable_repairs: CounterId,
    h_wait: HistId,
    h_jct: HistId,
    g_queue_depth: GaugeId,
    g_running_jobs: GaugeId,
    g_free_boards: GaugeId,
    // Streaming wait/JCT histograms, fed in complete_job and handed to
    // the report (plus merged into the registry when metrics are on).
    wait_hist: HistogramU64,
    jct_hist: HistogramU64,
}

impl ClusterSim {
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(cfg.num_jobs > 0, "a run needs jobs");
        let net = cfg.mesh.build();
        let mesh = BoardMesh::new(cfg.mesh.x, cfg.mesh.y);
        let mut workload_rng = StdRng::seed_from_u64(cfg.seed);
        let jobs = sample_jobs(
            cfg.num_jobs,
            cfg.mean_interarrival_ps,
            &cfg.size_dist,
            cfg.iters,
            cfg.grad_bytes,
            cfg.compute_ps,
            &mut workload_rng,
        );
        let mut events = EventQueue::new();
        for j in &jobs {
            events.push(j.arrival_ps, Event::Arrival(j.id));
        }
        let mut fail_rng = StdRng::seed_from_u64(cfg.seed ^ 0xFA11_FA11_FA11_FA11);
        if let Some(mean) = cfg.mean_fail_interval_ps {
            events.push(exponential_ps(mean, &mut fail_rng), Event::CableFail);
        }
        let trace = hxtelemetry::collect::trace_enabled();
        let tel_metrics = hxtelemetry::collect::metrics_enabled();
        let mut reg = Registry::new();
        let g_queue_depth = reg.gauge("queue_depth");
        let g_running_jobs = reg.gauge("running_jobs");
        let g_free_boards = reg.gauge("free_boards");
        // Sample cluster state once per mean interarrival gap of sim time;
        // the ring keeps the most recent 512 snapshots.
        let sampler = Sampler::new(
            &reg,
            cfg.mean_interarrival_ps,
            512,
            vec![g_queue_depth, g_running_jobs, g_free_boards],
        );
        Self {
            cfg,
            net,
            mesh,
            jobs,
            queue: VecDeque::new(),
            running: BTreeMap::new(),
            events,
            iter_cache: BTreeMap::new(),
            records: BTreeMap::new(),
            fail_rng,
            last_metric_ps: 0,
            frag_integral: 0.0,
            util_integral: 0.0,
            busy_link_ps: 0.0,
            fail_events: 0,
            repair_events: 0,
            resims: 0,
            defrag_passes: 0,
            sim_invocations: 0,
            flows_rerouted: 0,
            sink: TraceSink::new(trace),
            tel_metrics,
            tel_any: trace || tel_metrics,
            c_jobs_queued: reg.counter("jobs_queued"),
            c_jobs_placed: reg.counter("jobs_placed"),
            c_jobs_preempted: reg.counter("jobs_preempted"),
            c_cable_fails: reg.counter("cable_fails"),
            c_cable_repairs: reg.counter("cable_repairs"),
            h_wait: reg.histogram("job_wait_ps"),
            h_jct: reg.histogram("job_jct_ps"),
            g_queue_depth,
            g_running_jobs,
            g_free_boards,
            reg,
            sampler,
            wait_hist: HistogramU64::new(),
            jct_hist: HistogramU64::new(),
        }
    }

    /// Run to completion and report. Every submitted job either finishes
    /// or is rejected (shape larger than the mesh in every orientation),
    /// so termination is structural: arrivals are finite, completions
    /// drain the queue, and stale events are skipped.
    pub fn run(mut self) -> ClusterReport {
        let mut makespan = 0u64;
        while let Some((now, ev)) = self.events.pop() {
            if !self.work_remains() {
                // Every job is done or rejected; whatever is left in the
                // heap (pending repairs, the next failure draw) happens on
                // an idle cluster and would only dilute the time averages.
                break;
            }
            self.integrate_metrics(now);
            match ev {
                Event::Arrival(id) => {
                    self.queue.push_back(id);
                    if self.tel_any {
                        self.sink.instant_args(
                            "job_queued",
                            "cluster",
                            now,
                            vec![("job", id as u64)],
                        );
                        self.reg.inc(self.c_jobs_queued, 1);
                    }
                    self.place_queued(now);
                }
                Event::Completion { job, generation } => {
                    let current = self.running.get(&job).map(|r| r.generation);
                    if current != Some(generation) {
                        continue; // stale: the job was re-rated meanwhile
                    }
                    self.complete_job(job, now);
                    makespan = makespan.max(now);
                    self.place_queued(now);
                }
                Event::CableFail => {
                    self.fail_one_cable(now);
                    if let Some(mean) = self.cfg.mean_fail_interval_ps {
                        let gap = exponential_ps(mean, &mut self.fail_rng);
                        self.events.push(now + gap.max(1), Event::CableFail);
                    }
                }
                Event::CableRepair { node, port } => {
                    if self.net.topo.restore_link(node, port) {
                        self.repair_events += 1;
                        if self.tel_any {
                            self.sink.instant_args(
                                "cable_repair",
                                "cluster",
                                now,
                                vec![("node", node.0 as u64), ("port", port.0 as u64)],
                            );
                            self.reg.inc(self.c_cable_repairs, 1);
                        }
                        self.rerate_with_event(now, Some((node, port, LinkEventKind::Repair)));
                    }
                }
            }
            if self.tel_metrics {
                self.reg.set(self.g_queue_depth, self.queue.len() as i64);
                self.reg.set(self.g_running_jobs, self.running.len() as i64);
                self.reg
                    .set(self.g_free_boards, self.mesh.free_boards() as i64);
            }
        }
        assert!(
            self.queue.is_empty() && self.running.is_empty(),
            "event queue drained with work left: {} queued, {} running",
            self.queue.len(),
            self.running.len()
        );
        if self.tel_any {
            if self.tel_metrics {
                self.reg.merge_hist(self.h_wait, &self.wait_hist);
                self.reg.merge_hist(self.h_jct, &self.jct_hist);
            }
            let names = self.sampler.gauge_names().to_vec();
            let samples = self.sampler.take_samples();
            let reg = std::mem::take(&mut self.reg);
            let sink = std::mem::replace(&mut self.sink, TraceSink::disabled());
            hxtelemetry::collect::submit_with_samples(reg, sink, names, samples);
        }
        let mut jobs: Vec<JobRecord> = self.records.into_values().collect();
        jobs.sort_by_key(|r| r.id);
        let rejected_jobs = jobs.iter().filter(|j| j.rejected).count() as u32;
        let links = self.net.topo.num_links();
        ClusterReport {
            jobs,
            makespan_ps: makespan,
            frag_time_avg: if makespan > 0 {
                self.frag_integral / makespan as f64
            } else {
                0.0
            },
            util_time_avg: if makespan > 0 {
                self.util_integral / makespan as f64
            } else {
                0.0
            },
            link_util: if makespan > 0 && links > 0 {
                self.busy_link_ps / (2.0 * links as f64 * makespan as f64)
            } else {
                0.0
            },
            fail_events: self.fail_events,
            repair_events: self.repair_events,
            resims: self.resims,
            flows_rerouted: self.flows_rerouted,
            rejected_jobs,
            defrag_passes: self.defrag_passes,
            sim_invocations: self.sim_invocations,
            wait_hist: self.wait_hist,
            jct_hist: self.jct_hist,
        }
    }

    fn work_remains(&self) -> bool {
        !self.queue.is_empty() || !self.running.is_empty() || self.records.len() < self.jobs.len()
    }

    /// Advance the time integrals to `now` using the state that held on
    /// `[last_metric_ps, now)`.
    fn integrate_metrics(&mut self, now: u64) {
        if self.tel_metrics {
            // The gauges still hold the state that ruled on
            // [last_metric_ps, now), so snapshot before the event mutates.
            self.sampler.advance(now, &self.reg);
        }
        let dt = now.saturating_sub(self.last_metric_ps);
        if dt > 0 {
            let dtf = dt as f64;
            self.frag_integral += self.mesh.fragmentation() * dtf;
            self.util_integral += self.mesh.utilization() * dtf;
            for r in self.running.values() {
                self.busy_link_ps += dtf / r.iter_ps as f64 * r.busy_per_iter as f64;
            }
            self.last_metric_ps = now;
        }
    }

    /// FIFO-with-backfill placement pass: try the head; if it is blocked
    /// and defrag-on-block applies, checkpoint/restart-defragment once and
    /// retry; then let smaller queued jobs backfill around a still-blocked
    /// head. Shapes too large for the mesh in every orientation are
    /// rejected at first attempt.
    fn place_queued(&mut self, now: u64) {
        let mut defragged = false;
        let mut idx = 0;
        while idx < self.queue.len() {
            let id = self.queue[idx];
            let spec = self.jobs[id as usize].clone();
            match self.try_place(&spec, now) {
                Ok(()) => {
                    self.queue.remove(idx);
                    continue; // a placement may unblock nothing else, but
                              // re-test from the same index
                }
                Err(AllocError::TooLarge) => {
                    self.queue.remove(idx);
                    self.records.insert(
                        id,
                        JobRecord {
                            id,
                            boards: spec.boards(),
                            placed_u: 0,
                            placed_v: 0,
                            arrival_ps: spec.arrival_ps,
                            start_ps: u64::MAX,
                            finish_ps: 0,
                            resims: 0,
                            rejected: true,
                        },
                    );
                    continue;
                }
                Err(AllocError::NoSpace) => {
                    // Head blocked: one defrag attempt per pass, then
                    // backfill the rest of the queue around it.
                    if idx == 0
                        && self.cfg.defrag_on_block
                        && !defragged
                        && spec.boards() <= self.mesh.free_boards()
                    {
                        defragged = true;
                        self.defrag_passes += 1;
                        let dropped = self.mesh.defragment(self.cfg.heuristics);
                        debug_assert_eq!(dropped, 0, "defragment dropped jobs");
                        // Defragmentation moves (and may reshape) running
                        // jobs: refresh every placement from the mesh, so
                        // the re-rate below — and all later epoch
                        // measurements — simulate the boards the job
                        // *now* occupies, not the pre-defrag ones.
                        for (id, r) in self.running.iter_mut() {
                            let fresh = self
                                .mesh
                                .placement(*id)
                                // hxlint: allow(P001) defragment() restores or re-places every running job
                                .expect("running job lost by defragment")
                                .clone();
                            if self.tel_any && fresh != r.placement {
                                self.sink.instant_args(
                                    "job_preempted",
                                    "cluster",
                                    now,
                                    vec![("job", *id as u64)],
                                );
                                self.reg.inc(self.c_jobs_preempted, 1);
                            }
                            r.placement = fresh;
                        }
                        self.rerate_running(now);
                        continue; // retry the head on the compacted mesh
                    }
                    idx += 1;
                }
            }
        }
    }

    fn try_place(&mut self, spec: &JobSpec, now: u64) -> Result<(), AllocError> {
        let placement = self
            .mesh
            .allocate(spec.id, spec.u, spec.v, self.cfg.heuristics)?;
        let (comm_ps, busy) = self.measure_iteration(&placement, spec.grad_bytes);
        let iter_ps = iteration_ps(spec.compute_ps, comm_ps, self.cfg.overlap);
        if self.tel_any {
            self.sink.instant_args(
                "job_placed",
                "cluster",
                now,
                vec![
                    ("job", spec.id as u64),
                    ("boards", placement.boards() as u64),
                    ("rows", placement.rows.len() as u64),
                    ("cols", placement.cols.len() as u64),
                ],
            );
            self.reg.inc(self.c_jobs_placed, 1);
        }
        let finish = now + spec.iters as u64 * iter_ps;
        self.events.push(
            finish,
            Event::Completion {
                job: spec.id,
                generation: 0,
            },
        );
        self.running.insert(
            spec.id,
            Running {
                spec: spec.clone(),
                placement,
                start_ps: now,
                done_iters: 0.0,
                last_update_ps: now,
                iter_ps,
                comm_ps,
                busy_per_iter: busy,
                generation: 0,
                resims: 0,
            },
        );
        Ok(())
    }

    fn complete_job(&mut self, id: u32, now: u64) {
        let r = self
            .running
            .remove(&id)
            // hxlint: allow(P001) completions are only enqueued for jobs in `running`
            .expect("completion for unknown job");
        debug_assert_eq!(
            self.mesh.placement(id),
            Some(&r.placement),
            "job {id}: cached placement drifted from the mesh"
        );
        self.mesh.free(id);
        self.wait_hist.record(r.start_ps - r.spec.arrival_ps);
        self.jct_hist.record(now - r.spec.arrival_ps);
        self.records.insert(
            id,
            JobRecord {
                id,
                boards: r.placement.boards(),
                placed_u: r.placement.rows.len(),
                placed_v: r.placement.cols.len(),
                arrival_ps: r.spec.arrival_ps,
                start_ps: r.start_ps,
                finish_ps: now,
                resims: r.resims,
                rejected: false,
            },
        );
    }

    /// Draw one connectivity-preserving cable failure, schedule its
    /// repair, and re-rate every running job on the new epoch.
    fn fail_one_cable(&mut self, now: u64) {
        let mut pool = self.net.topo.cables();
        pool.shuffle(&mut self.fail_rng);
        for (node, port) in pool {
            if !self.net.topo.fail_link(node, port) {
                continue; // already failed
            }
            if !self.net.endpoints_connected() {
                self.net.topo.restore_link(node, port);
                continue;
            }
            self.fail_events += 1;
            if self.tel_any {
                self.sink.instant_args(
                    "cable_fail",
                    "cluster",
                    now,
                    vec![("node", node.0 as u64), ("port", port.0 as u64)],
                );
                self.reg.inc(self.c_cable_fails, 1);
            }
            let repair = exponential_ps(self.cfg.mean_repair_ps, &mut self.fail_rng);
            self.events
                .push(now + repair.max(1), Event::CableRepair { node, port });
            self.rerate_with_event(now, Some((node, port, LinkEventKind::Fail)));
            return;
        }
        // Every remaining cable is load-bearing: skip this failure draw.
    }

    /// A defrag moved the placements: bank each running job's progress at
    /// its old rate, re-measure its iteration time on the current network,
    /// and schedule a fresh completion.
    fn rerate_running(&mut self, now: u64) {
        self.rerate_with_event(now, None);
    }

    /// The failure epoch moved (or, with `event = None`, a defrag moved
    /// the placements): bank each running job's progress at its old rate,
    /// re-measure its iteration time on the current network, and schedule
    /// a fresh completion. With `in_situ_failures` on and a link event at
    /// hand, the iteration each job had in flight is additionally
    /// measured *in situ* — simulated from the pre-event epoch with the
    /// event injected at the job's fractional position, so flows re-route
    /// (or packets retransmit) inside the run — and the measured excess
    /// over the frozen-epoch model is charged to that job's finish time.
    fn rerate_with_event(&mut self, now: u64, event: Option<(NodeId, PortId, LinkEventKind)>) {
        let ids: Vec<u32> = self.running.keys().copied().collect(); // id order

        // In-situ pass: the communication time of each interrupted
        // iteration, keyed by job. Runs on the pre-event topology.
        let mut interrupted: BTreeMap<u32, u64> = BTreeMap::new();
        if self.cfg.in_situ_failures {
            if let Some((node, port, kind)) = event {
                // Flip the link back to the state the in-flight iterations
                // started under; the event then lands mid-simulation.
                let flipped = match kind {
                    LinkEventKind::Fail => self.net.topo.restore_link(node, port),
                    LinkEventKind::Repair => self.net.topo.fail_link(node, port),
                };
                debug_assert!(flipped, "epoch event did not change the link");
                for &id in &ids {
                    let (placement, grad_bytes, frac, comm_old) = {
                        let r = &self.running[&id];
                        let dt = now - r.last_update_ps;
                        let done = r.done_iters + dt as f64 / r.iter_ps as f64;
                        let frac = if done >= r.spec.iters as f64 {
                            0.0
                        } else {
                            done.fract()
                        };
                        (r.placement.clone(), r.spec.grad_bytes, frac, r.comm_ps)
                    };
                    if frac <= 0.0 || comm_old == 0 {
                        continue; // between iterations: nothing in flight
                    }
                    let t_mid = ((frac * comm_old as f64) as u64).max(1);
                    let sched = match kind {
                        LinkEventKind::Fail => FailureSchedule::new().fail(t_mid, node, port),
                        LinkEventKind::Repair => FailureSchedule::new().repair(t_mid, node, port),
                    };
                    let stats = self.run_iteration(&placement, grad_bytes, sched);
                    self.flows_rerouted += stats.flows_rerouted;
                    interrupted.insert(id, stats.finish_ps);
                }
                // Back to the post-event epoch for the steady-state rates.
                let restored = match kind {
                    LinkEventKind::Fail => self.net.topo.fail_link(node, port),
                    LinkEventKind::Repair => self.net.topo.restore_link(node, port),
                };
                debug_assert!(restored, "post-event epoch not restored");
            }
        }
        for id in ids {
            // Measure with the borrow released, then write back.
            let (placement, grad_bytes) = {
                let r = &self.running[&id];
                (r.placement.clone(), r.spec.grad_bytes)
            };
            let (comm_ps, busy) = self.measure_iteration(&placement, grad_bytes);
            // hxlint: allow(P001) `id` was read out of `running` just above
            let r = self.running.get_mut(&id).unwrap();
            let dt = now - r.last_update_ps;
            let old_iter_ps = r.iter_ps;
            let done_new = r.done_iters + dt as f64 / r.iter_ps as f64;
            let frac = if done_new >= r.spec.iters as f64 {
                0.0
            } else {
                done_new.fract()
            };
            r.done_iters = done_new.min(r.spec.iters as f64);
            r.last_update_ps = now;
            r.iter_ps = iteration_ps(r.spec.compute_ps, comm_ps, self.cfg.overlap);
            r.comm_ps = comm_ps;
            r.busy_per_iter = busy;
            r.generation += 1;
            r.resims += 1;
            self.resims += 1;
            // The frozen-epoch model prices the cut iteration as `frac`
            // at the old rate plus the remainder at the new; the in-situ
            // measurement replaces that with the simulated truth, and any
            // excess is a one-time charge on this job's finish.
            let penalty = interrupted
                .get(&id)
                .map(|&comm_mid| {
                    let in_situ =
                        iteration_ps(r.spec.compute_ps, comm_mid, self.cfg.overlap) as f64;
                    let frozen = frac * old_iter_ps as f64 + (1.0 - frac) * r.iter_ps as f64;
                    (in_situ - frozen).max(0.0) as u64
                })
                .unwrap_or(0);
            let remaining = (r.spec.iters as f64 - r.done_iters).max(0.0);
            let finish = now + (remaining * r.iter_ps as f64).ceil() as u64 + penalty;
            self.events.push(
                finish,
                Event::Completion {
                    job: id,
                    generation: r.generation,
                },
            );
        }
    }

    /// One iteration's communication time and busy link-ps for a placed
    /// job on the *current* network state, via the configured hxsim
    /// backend; memoized on (placement, failure set, bytes).
    fn measure_iteration(&mut self, placement: &Placement, grad_bytes: u64) -> (u64, u64) {
        let key: IterKey = (
            placement.rows.clone(),
            placement.cols.clone(),
            self.net.topo.failure_set_id(),
            grad_bytes,
        );
        if let Some(&hit) = self.iter_cache.get(&key) {
            return hit;
        }
        let stats = self.run_iteration(placement, grad_bytes, FailureSchedule::default());
        let out = (stats.finish_ps, stats.total_link_busy_ps);
        self.iter_cache.insert(key, out);
        out
    }

    /// Uncached: simulate one iteration of a placed job on the current
    /// network, with `failures` applied as in-run events (empty for the
    /// steady-state measurements). The in-situ path cannot memoize — the
    /// event lands at a per-job fractional instant, so no two interrupted
    /// iterations share a key.
    fn run_iteration(
        &mut self,
        placement: &Placement,
        grad_bytes: u64,
        failures: FailureSchedule,
    ) -> SimStats {
        let p = &self.cfg.mesh;
        let grid_rows = placement.rows.len() * p.a;
        let grid_cols = placement.cols.len() * p.b;
        let elems = (grad_bytes / hxcollect::ELEM_BYTES) as usize;
        let sched = job_allreduce(grid_rows, grid_cols, elems);
        let mut mapping = Vec::with_capacity(grid_rows * grid_cols);
        for gi in 0..grid_rows {
            let bi = placement.rows[gi / p.a] as u16;
            let r = (gi % p.a) as u16;
            for gj in 0..grid_cols {
                let bj = placement.cols[gj / p.b] as u16;
                let c = (gj % p.b) as u16;
                mapping.push(p.rank_of(HxCoord { bi, bj, r, c }) as u32);
            }
        }
        let mut app = ScheduleApp::with_mapping(&sched, mapping);
        let cfg = SimConfig {
            seed: self.cfg.seed ^ 0x51u64,
            failures,
            ..SimConfig::default()
        };
        let stats = simulate(&self.net, cfg, self.cfg.engine, &mut app);
        assert!(
            stats.clean() && app.is_done(),
            "iteration sim incomplete for placement {:?}x{:?} under {:?}",
            placement.rows,
            placement.cols,
            self.net.topo.failure_set_id()
        );
        self.sim_invocations += 1;
        stats
    }
}

/// Iteration time under partial compute/communication overlap:
/// `compute + comm - min(overlap * comm, compute)`. With `overlap = 1`
/// this is `max(compute, comm)`; with `overlap = 0`, their sum.
pub fn iteration_ps(compute_ps: u64, comm_ps: u64, overlap: f64) -> u64 {
    let hidden = (overlap.clamp(0.0, 1.0) * comm_ps as f64).min(compute_ps as f64);
    compute_ps + comm_ps - hidden.round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_formula_limits() {
        assert_eq!(iteration_ps(100, 40, 0.0), 140);
        assert_eq!(iteration_ps(100, 40, 1.0), 100);
        assert_eq!(iteration_ps(40, 100, 1.0), 100);
        assert_eq!(iteration_ps(100, 40, 0.5), 120);
    }

    fn tiny_cfg() -> ClusterConfig {
        ClusterConfig {
            mesh: HxMeshParams::square(2, 4),
            num_jobs: 12,
            mean_interarrival_ps: 10 * MS,
            size_dist: JobSizeDistribution::for_cluster(16),
            iters: (3, 8),
            grad_bytes: 256 << 10,
            compute_ps: MS,
            mean_fail_interval_ps: Some(30 * MS),
            mean_repair_ps: 20 * MS,
            seed: 42,
            ..ClusterConfig::quick()
        }
    }

    #[test]
    fn tiny_cluster_run_completes_every_job() {
        let report = ClusterSim::new(tiny_cfg()).run();
        assert_eq!(report.jobs.len(), 12);
        assert!(report.jobs.iter().all(|j| j.rejected || j.finish_ps > 0));
        assert!(report.makespan_ps > 0);
        assert!(report.util_time_avg > 0.0 && report.util_time_avg <= 1.0);
        assert!((0.0..=1.0).contains(&report.frag_time_avg));
        assert!(report.link_util > 0.0 && report.link_util < 1.0);
        // Waits are consistent: start >= arrival, finish > start.
        for j in report.jobs.iter().filter(|j| !j.rejected) {
            assert!(j.start_ps >= j.arrival_ps, "{j:?}");
            assert!(j.finish_ps > j.start_ps, "{j:?}");
        }
    }

    #[test]
    fn same_seed_same_report_different_seed_different_schedule() {
        let a = ClusterSim::new(tiny_cfg()).run();
        let b = ClusterSim::new(tiny_cfg()).run();
        let mut csv_a = String::new();
        let mut csv_b = String::new();
        a.write_csv("x", &mut csv_a);
        b.write_csv("x", &mut csv_b);
        assert_eq!(csv_a, csv_b, "same seed must reproduce byte-identically");

        let c = ClusterSim::new(ClusterConfig {
            seed: 43,
            ..tiny_cfg()
        })
        .run();
        let mut csv_c = String::new();
        c.write_csv("x", &mut csv_c);
        assert_ne!(csv_a, csv_c, "different seed should differ");
    }

    #[test]
    fn failures_rerate_running_jobs() {
        // Aggressive churn: failures every few ms with slow repairs force
        // mid-run epochs; at least one job must have been re-rated, and
        // fail/repair counts must be consistent.
        let cfg = ClusterConfig {
            mean_fail_interval_ps: Some(5 * MS),
            mean_repair_ps: 50 * MS,
            ..tiny_cfg()
        };
        let report = ClusterSim::new(cfg).run();
        assert!(report.fail_events > 0, "no failures drawn");
        assert!(report.resims > 0, "failures never re-rated a running job");
        assert!(report.repair_events <= report.fail_events);
        assert!(report.jobs.iter().any(|j| j.resims > 0));
    }

    #[test]
    fn in_situ_failures_reroute_flows_under_heavy_churn() {
        // Heavy-load smoke: aggressive churn with in-situ measurement on
        // must catch at least one job's flows in flight on a failing (or
        // repairing) cable and re-route them inside the interrupted
        // iteration's simulation. The legacy frozen-epoch path must keep
        // the counter at zero, and every job still completes either way.
        let churn = |in_situ| ClusterConfig {
            mean_fail_interval_ps: Some(5 * MS),
            mean_repair_ps: 50 * MS,
            in_situ_failures: in_situ,
            ..tiny_cfg()
        };
        let report = ClusterSim::new(churn(true)).run();
        assert!(report.fail_events > 0, "no failures drawn");
        assert!(
            report.flows_rerouted >= 1,
            "in-situ epochs never rerouted a flow in flight"
        );
        assert_eq!(report.jobs.len(), 12);
        assert!(report.jobs.iter().all(|j| j.rejected || j.finish_ps > 0));

        let legacy = ClusterSim::new(churn(false)).run();
        assert_eq!(
            legacy.flows_rerouted, 0,
            "frozen-epoch model must not report in-situ re-routes"
        );
        // In-situ only ever *adds* a one-time charge to interrupted jobs:
        // the completion order and counts stay intact.
        assert_eq!(legacy.jobs.len(), report.jobs.len());
    }

    #[test]
    fn no_failures_means_no_resims() {
        let cfg = ClusterConfig {
            mean_fail_interval_ps: None,
            defrag_on_block: false,
            ..tiny_cfg()
        };
        let report = ClusterSim::new(cfg).run();
        assert_eq!(report.fail_events, 0);
        assert_eq!(report.resims, 0);
        assert!(report.jobs.iter().all(|j| j.resims == 0));
    }

    #[test]
    fn defrag_refreshes_running_placements() {
        // A saturating stream of half-cluster giants forces
        // defrag-on-block re-packs with jobs in flight; the placement
        // debug-assert in complete_job then verifies every cached
        // placement tracked the mesh through the moves.
        let cfg = ClusterConfig {
            num_jobs: 24,
            mean_interarrival_ps: 2 * MS,
            size_dist: JobSizeDistribution {
                max_boards: 8,
                ..JobSizeDistribution::for_cluster(16)
            },
            mean_fail_interval_ps: Some(25 * MS),
            // Rigid placement (no transpose/aspect/locality): requests
            // block on fragmented space far more often, which is what
            // drives the defrag path this test is after.
            heuristics: Heuristics::none(),
            ..tiny_cfg()
        };
        let report = ClusterSim::new(cfg).run();
        assert!(report.defrag_passes > 0, "load never triggered a defrag");
        assert_eq!(
            report.jobs.iter().filter(|j| !j.rejected).count() as u32 + report.rejected_jobs,
            24
        );
    }

    #[test]
    fn streaming_histograms_match_job_records() {
        let report = ClusterSim::new(tiny_cfg()).run();
        let completed = report.jobs.iter().filter(|j| !j.rejected).count() as u64;
        assert_eq!(report.wait_hist.count(), completed);
        assert_eq!(report.jct_hist.count(), completed);
        // The streaming percentile agrees with a sort within one bucket
        // (exact below 128 ps, <= 1/64 relative error above).
        let mut waits: Vec<u64> = report
            .jobs
            .iter()
            .filter(|j| !j.rejected)
            .map(|j| j.wait_ps())
            .collect();
        waits.sort_unstable();
        for p in [0.5, 0.9, 1.0] {
            let idx = ((waits.len() as f64 * p).ceil() as usize).clamp(1, waits.len()) - 1;
            let exact = waits[idx];
            let streamed = report.wait_percentile_ps(p);
            assert!(streamed >= exact, "p{p}: {streamed} < {exact}");
            assert!(
                streamed - exact <= exact / 64 + 1,
                "p{p}: {streamed} vs {exact}"
            );
        }
    }

    #[test]
    fn failure_set_cache_bounds_sim_invocations() {
        // measure_iteration is called once per placement plus once per
        // re-rate; the (placement, failure-set, bytes) memo must absorb
        // repeats — in particular fail -> repair cycles that return to the
        // healthy set. With churn enabled, strictly fewer network
        // simulations than measurement calls proves the cache hits.
        let cfg = ClusterConfig {
            mean_fail_interval_ps: Some(5 * MS),
            mean_repair_ps: 10 * MS,
            ..tiny_cfg()
        };
        let report = ClusterSim::new(cfg).run();
        let placed = report.jobs.iter().filter(|j| !j.rejected).count() as u32;
        let measure_calls = placed + report.resims;
        assert!(report.resims > 0, "churn produced no re-rates");
        assert!(
            report.sim_invocations < measure_calls,
            "no cache hits: {} sims for {} measurement calls",
            report.sim_invocations,
            measure_calls
        );
    }
}
