//! The cluster-level discrete-event queue.
//!
//! A deliberately small binary-heap event queue: entries are ordered by
//! simulated time with a monotone sequence number as the tie-breaker, so
//! the processing order — and therefore every downstream metric — is fully
//! deterministic no matter how events interleave at the same picosecond.

use hxnet::{NodeId, PortId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One cluster-level occurrence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// Job `id` enters the submission queue.
    Arrival(u32),
    /// Job `id` finishes its last iteration — valid only while the job's
    /// rate `generation` is current; a fail/repair re-rate in between
    /// leaves a stale completion in the heap, which is skipped.
    Completion { job: u32, generation: u32 },
    /// Draw and fail one random connectivity-preserving cable.
    CableFail,
    /// Repair the cable failed at `(node, port)`.
    CableRepair { node: NodeId, port: PortId },
}

#[derive(Debug, PartialEq, Eq)]
struct Entry {
    time_ps: u64,
    seq: u64,
    event: Event,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest entry pops
        // first, with the sequence number breaking picosecond ties in
        // scheduling order.
        (other.time_ps, other.seq).cmp(&(self.time_ps, self.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic time-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, time_ps: u64, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            time_ps,
            seq,
            event,
        });
    }

    /// Pop the earliest event (FIFO among same-picosecond entries).
    pub fn pop(&mut self) -> Option<(u64, Event)> {
        self.heap.pop().map(|e| (e.time_ps, e.event))
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_insertion_order() {
        let mut q = EventQueue::new();
        q.push(50, Event::Arrival(0));
        q.push(10, Event::Arrival(1));
        q.push(10, Event::CableFail);
        q.push(10, Event::Arrival(2));
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some((10, Event::Arrival(1))));
        assert_eq!(q.pop(), Some((10, Event::CableFail)));
        assert_eq!(q.pop(), Some((10, Event::Arrival(2))));
        assert_eq!(q.pop(), Some((50, Event::Arrival(0))));
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
