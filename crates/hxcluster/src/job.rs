//! Job model: what a training job asks for and how the arrival stream is
//! drawn.
//!
//! Sizes and shapes come from `hxalloc::workload`'s calibrated MLaaS
//! distribution (the Fig. 7 stand-in); arrivals are Poisson (exponential
//! interarrival gaps), the standard open-arrival model for shared-cluster
//! scheduling studies and what the DSLab-style host/scheduler examples
//! drive their simulations with.

use hxalloc::workload::JobSizeDistribution;
use rand::rngs::StdRng;
use rand::Rng;

/// Everything known about a job at submission time.
#[derive(Clone, Debug)]
pub struct JobSpec {
    pub id: u32,
    /// Requested board shape (may be transposed/reshaped at placement).
    pub u: usize,
    pub v: usize,
    pub arrival_ps: u64,
    /// Training iterations the job runs before departing.
    pub iters: u32,
    /// Gradient bytes per accelerator reduced each iteration.
    pub grad_bytes: u64,
    /// Compute time of one iteration (ps).
    pub compute_ps: u64,
}

impl JobSpec {
    pub fn boards(&self) -> usize {
        self.u * self.v
    }
}

/// Sample from Exp(mean) by inversion. `u` is clamped away from 1.0 so the
/// logarithm stays finite.
pub fn exponential_ps(mean_ps: u64, rng: &mut StdRng) -> u64 {
    let u: f64 = rng.random_range(0.0..1.0);
    let x = -(1.0 - u.min(1.0 - 1e-12)).ln() * mean_ps as f64;
    x.round() as u64
}

/// Draw `n` jobs with Poisson arrivals at `mean_interarrival_ps`, sizes and
/// shapes from `dist`, iteration counts uniform in `iters`, and the given
/// per-iteration constants. Job ids are arrival-ordered.
pub fn sample_jobs(
    n: usize,
    mean_interarrival_ps: u64,
    dist: &JobSizeDistribution,
    iters: (u32, u32),
    grad_bytes: u64,
    compute_ps: u64,
    rng: &mut StdRng,
) -> Vec<JobSpec> {
    let mut t = 0u64;
    let mut jobs = Vec::with_capacity(n);
    for id in 0..n as u32 {
        t += exponential_ps(mean_interarrival_ps, rng);
        let s = dist.sample(rng);
        let (u, v) = dist.shape(s, rng);
        let iters = rng.random_range(iters.0..iters.1.max(iters.0 + 1));
        jobs.push(JobSpec {
            id,
            u,
            v,
            arrival_ps: t,
            iters,
            grad_bytes,
            compute_ps,
        });
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn arrivals_are_ordered_and_sized() {
        let mut rng = StdRng::seed_from_u64(7);
        let dist = JobSizeDistribution::for_cluster(64);
        let jobs = sample_jobs(50, 1_000_000, &dist, (5, 20), 1 << 20, 1_000, &mut rng);
        assert_eq!(jobs.len(), 50);
        for w in jobs.windows(2) {
            assert!(w[0].arrival_ps <= w[1].arrival_ps);
            assert_eq!(w[0].id + 1, w[1].id);
        }
        for j in &jobs {
            assert!(j.u >= 1 && j.v >= 1 && j.boards() <= 64);
            assert!((5..20).contains(&j.iters));
        }
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut rng = StdRng::seed_from_u64(1);
        let mean = 1_000_000u64;
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| exponential_ps(mean, &mut rng)).sum();
        let got = sum as f64 / n as f64;
        assert!(
            (got / mean as f64 - 1.0).abs() < 0.05,
            "sample mean {got} vs {mean}"
        );
    }
}
