//! Cluster-run metrics: per-job records plus time-averaged cluster state,
//! and the deterministic CSV the `cluster_sweep` binary emits.

use hxtelemetry::HistogramU64;

/// Outcome of one job.
#[derive(Clone, Debug)]
pub struct JobRecord {
    pub id: u32,
    /// Boards actually granted (after transpose/aspect reshaping).
    pub boards: usize,
    /// Placed shape (rows x cols of boards); `(0, 0)` for rejected jobs.
    pub placed_u: usize,
    pub placed_v: usize,
    pub arrival_ps: u64,
    /// Placement time; `u64::MAX` when the job was rejected outright
    /// (its shape exceeds the mesh in every allowed orientation).
    pub start_ps: u64,
    pub finish_ps: u64,
    /// Times the job was re-rated by a mid-run fail/repair event.
    pub resims: u32,
    pub rejected: bool,
}

impl JobRecord {
    pub fn wait_ps(&self) -> u64 {
        if self.rejected {
            return 0;
        }
        self.start_ps - self.arrival_ps
    }

    pub fn jct_ps(&self) -> u64 {
        if self.rejected {
            return 0;
        }
        self.finish_ps - self.arrival_ps
    }
}

/// Everything a cluster-lifetime run reports.
#[derive(Clone, Debug, Default)]
pub struct ClusterReport {
    /// Per-job outcomes, in job-id (= arrival) order.
    pub jobs: Vec<JobRecord>,
    /// Time of the last completion.
    pub makespan_ps: u64,
    /// Time average of `BoardMesh::fragmentation()` over the run.
    pub frag_time_avg: f64,
    /// Time average of `BoardMesh::utilization()` over the run.
    pub util_time_avg: f64,
    /// Cluster-wide mean directed-link utilization: busy link-ps of every
    /// job iteration executed, over `2 * links * makespan`.
    pub link_util: f64,
    pub fail_events: u32,
    pub repair_events: u32,
    /// Total job re-ratings triggered by failure-epoch advances.
    pub resims: u32,
    /// Flow re-routes observed inside in-situ interrupted-iteration
    /// simulations (always 0 under the default frozen-epoch model —
    /// see `ClusterConfig::in_situ_failures`). Deliberately not a CSV
    /// column: the legacy `cluster_sweep` output stays byte-identical.
    pub flows_rerouted: u64,
    /// Jobs whose shape could never fit the mesh.
    pub rejected_jobs: u32,
    /// Defragmentation passes triggered by blocked head-of-queue jobs.
    pub defrag_passes: u32,
    /// Network simulations actually executed (iteration measurements that
    /// missed the failure-set cache).
    pub sim_invocations: u32,
    /// Streaming histogram of completed-job wait times, fed as jobs
    /// complete. O(1) per job; percentile queries never sort.
    pub wait_hist: HistogramU64,
    /// Streaming histogram of completed-job completion times.
    pub jct_hist: HistogramU64,
}

impl ClusterReport {
    fn completed(&self) -> impl Iterator<Item = &JobRecord> {
        self.jobs.iter().filter(|j| !j.rejected)
    }

    pub fn mean_wait_ps(&self) -> f64 {
        let n = self.completed().count();
        if n == 0 {
            return 0.0;
        }
        self.completed().map(|j| j.wait_ps() as f64).sum::<f64>() / n as f64
    }

    pub fn mean_jct_ps(&self) -> f64 {
        let n = self.completed().count();
        if n == 0 {
            return 0.0;
        }
        self.completed().map(|j| j.jct_ps() as f64).sum::<f64>() / n as f64
    }

    /// `p`-quantile (0..=1) of completed-job wait times, nearest-rank,
    /// answered from the streaming histogram — no sort, no Vec of waits.
    /// Values below 128 ps are bucket-exact; larger ones are reported at
    /// their bucket's upper bound (relative error at most 1/64).
    pub fn wait_percentile_ps(&self, p: f64) -> u64 {
        self.wait_hist.percentile(p)
    }

    /// `p`-quantile (0..=1) of completed-job completion times.
    pub fn jct_percentile_ps(&self, p: f64) -> u64 {
        self.jct_hist.percentile(p)
    }

    /// Refill the streaming histograms from `jobs`. `ClusterSim` feeds
    /// them incrementally at completion time; reports assembled by hand
    /// (tests, replay tooling) call this once before querying percentiles.
    pub fn rebuild_histograms(&mut self) {
        self.wait_hist = HistogramU64::new();
        self.jct_hist = HistogramU64::new();
        for j in self.jobs.iter().filter(|j| !j.rejected) {
            self.wait_hist.record(j.wait_ps());
            self.jct_hist.record(j.jct_ps());
        }
    }

    /// CSV header shared by job and summary rows (`kind` discriminates).
    pub fn csv_header() -> &'static str {
        "kind,label,job,boards,placed_u,placed_v,arrival_ps,start_ps,finish_ps,\
         wait_ps,jct_ps,resims,frag_avg,util_avg,link_util,fails,repairs,\
         makespan_ps,mean_wait_ps,mean_jct_ps"
    }

    /// Append this run's rows (one per job, one summary) under `label`.
    /// Formatting is fixed-precision throughout, so identical runs render
    /// byte-identical CSVs.
    pub fn write_csv(&self, label: &str, out: &mut String) {
        use std::fmt::Write as _;
        for j in &self.jobs {
            if j.rejected {
                writeln!(
                    out,
                    "rejected,{label},{},{},0,0,{},,,,,0,,,,,,,,",
                    j.id, j.boards, j.arrival_ps
                )
                // hxlint: allow(P001) fmt::Write into a String is infallible
                .unwrap();
                continue;
            }
            writeln!(
                out,
                "job,{label},{},{},{},{},{},{},{},{},{},{},,,,,,,,",
                j.id,
                j.boards,
                j.placed_u,
                j.placed_v,
                j.arrival_ps,
                j.start_ps,
                j.finish_ps,
                j.wait_ps(),
                j.jct_ps(),
                j.resims
            )
            // hxlint: allow(P001) fmt::Write into a String is infallible
            .unwrap();
        }
        writeln!(
            out,
            "summary,{label},{},,,,,,,,,,{:.6},{:.6},{:.6},{},{},{},{:.1},{:.1}",
            self.jobs.len(),
            self.frag_time_avg,
            self.util_time_avg,
            self.link_util,
            self.fail_events,
            self.repair_events,
            self.makespan_ps,
            self.mean_wait_ps(),
            self.mean_jct_ps()
        )
        // hxlint: allow(P001) fmt::Write into a String is infallible
        .unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u32, arrival: u64, start: u64, finish: u64) -> JobRecord {
        JobRecord {
            id,
            boards: 4,
            placed_u: 2,
            placed_v: 2,
            arrival_ps: arrival,
            start_ps: start,
            finish_ps: finish,
            resims: 0,
            rejected: false,
        }
    }

    #[test]
    fn means_and_percentiles() {
        let mut r = ClusterReport {
            jobs: vec![rec(0, 0, 10, 110), rec(1, 5, 45, 145), rec(2, 10, 10, 20)],
            makespan_ps: 145,
            ..Default::default()
        };
        r.rebuild_histograms();
        assert_eq!(r.mean_wait_ps(), (10.0 + 40.0 + 0.0) / 3.0);
        assert_eq!(r.mean_jct_ps(), (110.0 + 140.0 + 10.0) / 3.0);
        assert_eq!(r.wait_percentile_ps(0.5), 10);
        assert_eq!(r.wait_percentile_ps(1.0), 40);
        assert_eq!(r.jct_percentile_ps(0.5), 110);
    }

    #[test]
    fn histograms_ignore_rejected_jobs() {
        let mut r = ClusterReport {
            jobs: vec![rec(0, 0, 10, 110)],
            ..Default::default()
        };
        r.jobs.push(JobRecord {
            rejected: true,
            start_ps: u64::MAX,
            ..rec(1, 3, 0, 0)
        });
        r.rebuild_histograms();
        assert_eq!(r.wait_hist.count(), 1);
        assert_eq!(r.wait_percentile_ps(1.0), 10);
    }

    #[test]
    fn csv_is_rectangular() {
        let mut r = ClusterReport {
            jobs: vec![rec(0, 0, 10, 110)],
            makespan_ps: 110,
            ..Default::default()
        };
        r.jobs.push(JobRecord {
            rejected: true,
            start_ps: u64::MAX,
            ..rec(1, 3, 0, 0)
        });
        let mut csv = String::from(ClusterReport::csv_header());
        csv.push('\n');
        r.write_csv("test", &mut csv);
        let cols = ClusterReport::csv_header().split(',').count();
        for line in csv.lines() {
            assert_eq!(line.split(',').count(), cols, "{line}");
        }
        assert_eq!(csv.lines().count(), 1 + 2 + 1);
    }
}
