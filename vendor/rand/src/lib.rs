//! Offline API-compatible shim for the subset of `rand` 0.9 used by this
//! workspace. The build environment has no registry access, so the real
//! crate cannot be fetched; this shim keeps call sites source-compatible
//! while providing a high-quality deterministic generator (xoshiro256++
//! seeded via SplitMix64, the same construction `rand`'s `StdRng` family
//! documents for reproducible simulation use).
//!
//! Implemented surface (everything the workspace imports):
//! - [`RngCore`] (object-safe), [`Rng`] with `random_range`, [`SeedableRng`]
//!   with `seed_from_u64`
//! - [`rngs::StdRng`]
//! - [`rng()`] (thread-local-style generator, deterministic per process)
//! - [`seq::SliceRandom`] with `shuffle` and `choose`

/// Object-safe core RNG interface.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods over [`RngCore`]. Generic methods carry a `Sized`
/// bound so `dyn RngCore` remains usable where the workspace passes one.
pub trait Rng: RngCore {
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: distr::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random_range(0.0..1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod distr {
    use super::RngCore;
    use std::ops::Range;

    /// A range that can produce a uniformly distributed sample.
    pub trait SampleRange<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range in random_range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    // Widening-multiply bounded sampling (Lemire); bias is
                    // negligible for the span sizes this workspace uses.
                    let x = rng.next_u64() as u128;
                    self.start + ((x * span) >> 64) as $t
                }
            }
        )*};
    }
    int_range!(usize, u64, u32, u16, u8);

    macro_rules! sint_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range in random_range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let x = rng.next_u64() as u128;
                    (self.start as i128 + ((x * span) >> 64) as i128) as $t
                }
            }
        )*};
    }
    sint_range!(isize, i64, i32, i16, i8);

    impl SampleRange<f64> for Range<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits in [0, 1).
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + (self.end - self.start) * unit
        }
    }

    impl SampleRange<f32> for Range<f32> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
            let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
            self.start + (self.end - self.start) * unit
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded from SplitMix64 — deterministic, fast, and of
    /// more than adequate quality for network simulation.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

/// Process-global generator in the spirit of `rand::rng()`. Deterministic
/// across runs (each call gets a distinct stream), which suits this
/// workspace's reproducibility goals.
pub fn rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static CALLS: AtomicU64 = AtomicU64::new(0);
    let n = CALLS.fetch_add(1, Ordering::Relaxed);
    SeedableRng::seed_from_u64(0xD1CE_5EED_0000_0000 ^ n)
}

pub mod seq {
    use super::RngCore;

    /// Slice extensions: Fisher–Yates shuffle and uniform choice.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = ((rng.next_u64() as u128 * self.len() as u128) >> 64) as usize;
                self.get(i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
