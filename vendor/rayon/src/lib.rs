//! Offline API-compatible implementation of the subset of `rayon` this
//! workspace uses (`into_par_iter` / `par_iter` + `map` / `for_each` /
//! `collect` chains). The build environment has no registry access, so
//! this crate replaces the real rayon — but, unlike the original shim,
//! it is **genuinely parallel**: each `collect`/`for_each` drives a
//! `std::thread::scope`-based pool in which workers claim input indices
//! from an atomic counter and write results into per-index slots, so the
//! collected output is **byte-identical to sequential execution at any
//! thread count** (index-ordered, no reduction-order effects).
//!
//! Differences from the real rayon, all intentional:
//!
//! * No global pool: threads are scoped to one parallel call. Sweeps in
//!   this workspace are coarse (milliseconds per item), so per-call spawn
//!   cost is noise, and scoped threads let borrowed captures (`&Network`
//!   etc.) cross into workers without `'static` bounds.
//! * `RAYON_NUM_THREADS` is re-read on every parallel call instead of
//!   once at global-pool init. `perf_smoke` exploits this to measure the
//!   1-thread vs N-thread wall clock in a single process.
//! * A worker panic poisons the queue (other workers stop claiming new
//!   items) and the panic is propagated to the caller by scope join, like
//!   rayon. Results already computed are leaked on that path — never
//!   double-dropped.
//!
//! Swapping in the real rayon restores work stealing with no call-site
//! changes.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Number of worker threads a parallel call will use: `RAYON_NUM_THREADS`
/// if set to a positive integer, otherwise the machine's available
/// parallelism. Matches `rayon::current_num_threads`.
pub fn current_num_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS") {
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

mod pool {
    use super::*;
    use std::cell::UnsafeCell;
    use std::mem::MaybeUninit;

    /// Shared work queue: input items claimed exactly once each via an
    /// atomic index counter.
    struct TaskQueue<T> {
        items: Vec<UnsafeCell<MaybeUninit<T>>>,
        next: AtomicUsize,
        poisoned: AtomicBool,
    }

    // SAFETY: items only move *out*, and `fetch_add` hands each index to
    // exactly one claimant; T crosses threads, hence T: Send.
    unsafe impl<T: Send> Sync for TaskQueue<T> {}

    impl<T> TaskQueue<T> {
        fn new(items: Vec<T>) -> Self {
            Self {
                items: items
                    .into_iter()
                    .map(|t| UnsafeCell::new(MaybeUninit::new(t)))
                    .collect(),
                next: AtomicUsize::new(0),
                poisoned: AtomicBool::new(false),
            }
        }

        fn take(&self) -> Option<(usize, T)> {
            if self.poisoned.load(Ordering::Relaxed) {
                return None;
            }
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.items.len() {
                return None;
            }
            // SAFETY: index i was handed to this caller alone (fetch_add),
            // and every slot starts initialized.
            Some((i, unsafe { (*self.items[i].get()).assume_init_read() }))
        }
    }

    impl<T> Drop for TaskQueue<T> {
        fn drop(&mut self) {
            // Claimed items were moved out by `take`; drop only the
            // never-claimed tail (nonempty only after a worker panic).
            let claimed = self.next.load(Ordering::Relaxed).min(self.items.len());
            for c in &mut self.items[claimed..] {
                unsafe { c.get_mut().assume_init_drop() };
            }
        }
    }

    /// Per-index output slots, written once each by whichever worker
    /// claimed the index.
    struct ResultSlots<R> {
        slots: Vec<UnsafeCell<MaybeUninit<R>>>,
    }

    // SAFETY: each slot is written by exactly one worker (the unique
    // claimant of its index) and only read after all workers joined.
    unsafe impl<R: Send> Sync for ResultSlots<R> {}

    impl<R> ResultSlots<R> {
        /// SAFETY: the caller must be the unique claimant of index `i`.
        unsafe fn write(&self, i: usize, r: R) {
            (*self.slots[i].get()).write(r);
        }
    }

    /// Sets the poison flag if dropped during a panic unwind, so sibling
    /// workers stop claiming new items.
    struct PoisonGuard<'a>(&'a AtomicBool);

    impl Drop for PoisonGuard<'_> {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Relaxed);
        }
    }

    /// Apply `f` to every item on `threads` scoped workers; results come
    /// back in input order regardless of which worker computed what, so
    /// the output is identical to the sequential map for any `threads`.
    /// A panic in `f` propagates to the caller (via scope join).
    pub fn par_map_n<T: Send, R: Send>(
        threads: usize,
        items: Vec<T>,
        f: impl Fn(T) -> R + Sync,
    ) -> Vec<R> {
        let n = items.len();
        if threads <= 1 || n <= 1 {
            return items.into_iter().map(f).collect();
        }
        let queue = TaskQueue::new(items);
        let slots = ResultSlots {
            slots: (0..n)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
        };
        std::thread::scope(|s| {
            for _ in 0..threads.min(n) {
                s.spawn(|| {
                    let guard = PoisonGuard(&queue.poisoned);
                    while let Some((i, item)) = queue.take() {
                        let r = f(item);
                        // SAFETY: this worker is the unique claimant of i.
                        unsafe { slots.write(i, r) };
                    }
                    std::mem::forget(guard);
                });
            }
            // Scope join: if any worker panicked, the panic resumes here
            // and `slots` is dropped uninspected (initialized results
            // leak — safe, never double-dropped).
        });
        slots
            .slots
            .into_iter()
            // SAFETY: no worker panicked (we are past the scope), so every
            // index was claimed and its slot written exactly once.
            .map(|c| unsafe { c.into_inner().assume_init() })
            .collect()
    }

    /// `par_map_n` at the environment-selected thread count.
    pub fn par_map<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
        par_map_n(current_num_threads(), items, f)
    }
}

pub mod iter {
    use super::pool;

    /// `into_par_iter()` entry point, mirroring rayon's trait of the same
    /// name. Any `IntoIterator` with `Send` items qualifies; the items
    /// are materialized up front so workers can claim them by index.
    pub trait IntoParallelIterator {
        type Iter: ParallelIterator<Item = Self::Item>;
        type Item: Send;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I
    where
        I::Item: Send,
    {
        type Iter = ParIter<I::Item>;
        type Item = I::Item;
        fn into_par_iter(self) -> ParIter<I::Item> {
            ParIter {
                items: self.into_iter().collect(),
            }
        }
    }

    /// `par_iter()` entry point: parallel iteration over `&self`, for any
    /// collection whose reference is `IntoParallelIterator` (mirrors
    /// rayon's blanket impl).
    pub trait IntoParallelRefIterator<'a> {
        type Iter: ParallelIterator<Item = Self::Item>;
        type Item: Send + 'a;
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, I: 'a + ?Sized> IntoParallelRefIterator<'a> for I
    where
        &'a I: IntoParallelIterator,
    {
        type Iter = <&'a I as IntoParallelIterator>::Iter;
        type Item = <&'a I as IntoParallelIterator>::Item;
        fn par_iter(&'a self) -> Self::Iter {
            self.into_par_iter()
        }
    }

    /// The base parallel iterator: a materialized list of items.
    pub struct ParIter<T> {
        items: Vec<T>,
    }

    /// A lazily mapped parallel iterator.
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    /// The adapter surface this workspace uses. Pipelines execute when a
    /// consuming method (`collect`, `for_each`) runs: the composed
    /// per-item closure is applied by the pool, and results return in
    /// input order — sequential and parallel runs are indistinguishable.
    pub trait ParallelIterator: Sized + Send {
        type Item: Send;

        /// Execute the pipeline, applying `f` to each produced item in
        /// parallel; results are in input order.
        fn run<R, F>(self, f: F) -> Vec<R>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync;

        fn map<R, F>(self, f: F) -> Map<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync + Send,
        {
            Map { base: self, f }
        }

        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Sync,
        {
            let _ = self.run(f);
        }

        fn collect<C>(self) -> C
        where
            C: FromIterator<Self::Item>,
        {
            self.run(|x| x).into_iter().collect()
        }

        fn count(self) -> usize {
            self.run(|_| ()).len()
        }
    }

    impl<T: Send> ParallelIterator for ParIter<T> {
        type Item = T;
        fn run<R, F>(self, f: F) -> Vec<R>
        where
            R: Send,
            F: Fn(T) -> R + Sync,
        {
            pool::par_map(self.items, f)
        }
    }

    impl<B, F, R> ParallelIterator for Map<B, F>
    where
        B: ParallelIterator,
        F: Fn(B::Item) -> R + Sync + Send,
        R: Send,
    {
        type Item = R;
        fn run<Q, G>(self, g: G) -> Vec<Q>
        where
            Q: Send,
            G: Fn(R) -> Q + Sync,
        {
            let f = self.f;
            self.base.run(move |x| g(f(x)))
        }
    }
}

pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Direct pool access for tests that need an explicit thread count
/// (bypasses `RAYON_NUM_THREADS`, which is process-global). Not part of
/// the real rayon API; call sites must not rely on it.
#[doc(hidden)]
pub fn __par_map_with_threads<T: Send, R: Send>(
    threads: usize,
    items: Vec<T>,
    f: impl Fn(T) -> R + Sync,
) -> Vec<R> {
    pool::par_map_n(threads, items, f)
}

#[cfg(test)]
mod tests {
    use super::__par_map_with_threads as par_map_n;
    use super::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_matches_std() {
        let squares: Vec<usize> = (0..10usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares, (0..10usize).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn results_are_index_ordered_at_any_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let f = |x: u64| x.wrapping_mul(0x9E3779B97F4A7C15) ^ (x << 7);
        let seq = par_map_n(1, items.clone(), f);
        for threads in [2, 3, 7, 16] {
            assert_eq!(
                par_map_n(threads, items.clone(), f),
                seq,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn work_is_actually_distributed() {
        // With more threads than items each worker claims at most a few
        // items; verify multiple workers participated by counting distinct
        // claimant threads.
        #[allow(clippy::disallowed_types)] // shim-internal test; order never observed
        let seen = std::sync::Mutex::new(std::collections::HashSet::new());
        par_map_n(4, (0..64).collect::<Vec<i32>>(), |x| {
            seen.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_micros(200));
            x
        });
        assert!(seen.lock().unwrap().len() > 1, "only one worker ran");
    }

    #[test]
    fn propagates_worker_panics() {
        let res = std::panic::catch_unwind(|| {
            par_map_n(4, (0..256).collect::<Vec<i32>>(), |x| {
                if x == 37 {
                    panic!("boom at {x}");
                }
                x * 2
            })
        });
        assert!(res.is_err(), "worker panic must propagate to the caller");
    }

    #[test]
    fn panicking_sweep_drops_unclaimed_items_exactly_once() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted(#[allow(dead_code)] usize);
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let n = 512;
        let items: Vec<Counted> = (0..n).map(Counted).collect();
        let res = std::panic::catch_unwind(|| {
            par_map_n(4, items, |c| {
                if c.0 == 3 {
                    panic!("boom");
                }
                drop(c);
            })
        });
        assert!(res.is_err());
        // Every item was dropped exactly once: either moved into `f`
        // (dropped there) or dropped as unclaimed queue tail.
        assert_eq!(DROPS.load(Ordering::SeqCst), n);
    }

    #[test]
    fn par_iter_over_slice_refs() {
        let v = vec![1u32, 2, 3, 4];
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        assert_eq!(v.len(), 4); // v not consumed
    }

    #[test]
    fn for_each_and_count() {
        let hits = AtomicUsize::new(0);
        (0..100u32).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!((0..41u8).into_par_iter().map(|x| x).count(), 41);
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let one: Vec<u8> = vec![9].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![10]);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
