//! Offline API-compatible shim for the subset of `rayon` this workspace
//! uses (`into_par_iter` + standard iterator adapters). The build
//! environment has no registry access, so parallel iteration degrades to
//! sequential `std` iteration — identical results, single-threaded.
//! Swapping in the real rayon restores parallelism with no call-site
//! changes.

pub mod iter {
    /// `into_par_iter()` entry point; yields a plain sequential iterator.
    pub trait IntoParallelIterator {
        type Iter: Iterator<Item = Self::Item>;
        type Item;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;
        fn into_par_iter(self) -> I::IntoIter {
            self.into_iter()
        }
    }

    /// Marker mirroring rayon's `ParallelIterator`; every sequential
    /// iterator qualifies, so `map`/`filter`/`collect` chains type-check
    /// unchanged.
    pub trait ParallelIterator: Iterator {}
    impl<T: Iterator> ParallelIterator for T {}
}

pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn sequential_map_collect_matches_std() {
        let squares: Vec<usize> = (0..10usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares, (0..10usize).map(|x| x * x).collect::<Vec<_>>());
    }
}
