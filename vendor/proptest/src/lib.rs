//! Offline API-compatible shim for the subset of `proptest` this
//! workspace uses: the `proptest!` macro over `arg in strategy` bindings,
//! range and tuple strategies, `collection::vec`, `prop_oneof!`,
//! `ProptestConfig`, and the `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!` macros.
//!
//! Semantics: each test runs `cases` deterministic pseudo-random cases
//! (seeded from the test name, so failures reproduce across runs). A
//! failing case is **shrunk** before being reported: the runner greedily
//! walks [`strategy::Strategy::shrink`] candidates — integers toward the range
//! start, vectors toward fewer/smaller elements, tuples field by field —
//! and panics with the smallest input it could still make fail. Shrinking
//! replays the test body under `catch_unwind`, so intermediate candidate
//! panics are printed by the default hook; only the final message matters.

pub mod test_runner {
    use crate::strategy::{minimize, Strategy};

    /// Per-test configuration.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Why a single case did not run to completion.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject,
    }

    /// Deterministic per-test RNG: seeded from the test's name via FNV-1a.
    pub struct TestRng(pub rand::rngs::StdRng);

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            use rand::SeedableRng;
            Self(rand::rngs::StdRng::seed_from_u64(h))
        }
    }

    /// Outcome of one execution of a test body.
    pub enum CaseResult {
        Pass,
        Reject,
        Fail(String),
    }

    fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    }

    /// Run the test body once, converting panics into [`CaseResult::Fail`].
    pub fn run_case<V, F>(f: &F, value: V) -> CaseResult
    where
        F: Fn(V) -> Result<(), TestCaseError>,
    {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(value))) {
            Ok(Ok(())) => CaseResult::Pass,
            Ok(Err(TestCaseError::Reject)) => CaseResult::Reject,
            Err(payload) => CaseResult::Fail(panic_message(payload)),
        }
    }

    /// The `proptest!` driver: sample `cfg.cases` inputs; on the first
    /// failure, shrink to a minimal failing input and panic with it.
    pub fn run<S, F>(name: &str, cfg: Config, strat: S, f: F)
    where
        S: Strategy,
        S::Value: Clone + std::fmt::Debug,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::deterministic(name);
        for case in 0..cfg.cases {
            let value = strat.sample(&mut rng);
            match run_case(&f, value.clone()) {
                CaseResult::Pass | CaseResult::Reject => continue,
                CaseResult::Fail(first_msg) => {
                    let fails =
                        |v: &S::Value| matches!(run_case(&f, v.clone()), CaseResult::Fail(_));
                    let (min, steps) = minimize(&strat, value, &fails);
                    let msg = match run_case(&f, min.clone()) {
                        CaseResult::Fail(m) => m,
                        _ => first_msg,
                    };
                    panic!(
                        "proptest {name} failed at case {case}; \
                         minimal input after {steps} shrink steps: {min:?}\n{msg}"
                    );
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A source of random values of one type.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Candidate simplifications of `value`, "simplest" first. The
        /// runner greedily takes the first candidate that still fails and
        /// repeats, so candidates must be strictly simpler than `value`
        /// (integers smaller, vectors shorter/element-wise smaller) or
        /// shrinking would not terminate. The default is no shrinking.
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let _ = value;
            Vec::new()
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            (**self).shrink(value)
        }
    }

    /// Greedy shrink loop: repeatedly replace `value` with the first
    /// shrink candidate that still satisfies `fails`, until none does (or
    /// a fixed evaluation budget runs out, which bounds the cost of
    /// shrinking expensive test bodies). Returns the minimized value and
    /// the number of successful shrink steps.
    pub fn minimize<S: Strategy>(
        strat: &S,
        mut value: S::Value,
        fails: &dyn Fn(&S::Value) -> bool,
    ) -> (S::Value, usize)
    where
        S::Value: Clone,
    {
        let mut steps = 0usize;
        let mut budget = 1024usize;
        'outer: while budget > 0 {
            for cand in strat.shrink(&value) {
                if budget == 0 {
                    break 'outer;
                }
                budget -= 1;
                if fails(&cand) {
                    value = cand;
                    steps += 1;
                    continue 'outer;
                }
            }
            break;
        }
        (value, steps)
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.0.random_range(self.clone())
                }
                /// Toward the range start: the start itself, the halfway
                /// point, then the predecessor — big jumps first so the
                /// greedy loop converges in O(log range) steps.
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    let v = *value;
                    let mut out = Vec::new();
                    if v <= self.start {
                        return out;
                    }
                    out.push(self.start);
                    let mid = self.start + (v - self.start) / 2;
                    if mid != self.start && mid != v {
                        out.push(mid);
                    }
                    let prev = v - 1;
                    if prev != self.start && prev != mid {
                        out.push(prev);
                    }
                    out
                }
            }
        )*};
    }
    int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.0.random_range(self.clone())
        }
        // No shrinking: halving a float rarely lands on a "simpler"
        // value, and == against candidates is a footgun.
    }

    // Positional shrink over a tuple: for each field in turn, substitute
    // that field's shrink candidates while cloning the others.
    macro_rules! tuple_shrink_each {
        ($out:ident, ($(($PS:ident, $pv:ident),)*), ()) => {};
        ($out:ident, ($(($PS:ident, $pv:ident),)*),
         (($S:ident, $v:ident), $(($TS:ident, $tv:ident),)*)) => {
            for cand in $S.shrink($v) {
                $out.push(($($pv.clone(),)* cand, $($tv.clone(),)*));
            }
            tuple_shrink_each!(
                $out,
                ($(($PS, $pv),)* ($S, $v),),
                ($(($TS, $tv),)*)
            );
        };
    }

    macro_rules! tuple_strategy {
        ($(($name:ident, $field:ident)),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*)
            where
                $($name::Value: Clone),*
            {
                type Value = ($($name::Value,)*);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)*) = self;
                    ($($name.sample(rng),)*)
                }
                #[allow(non_snake_case)]
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let ($($name,)*) = self;
                    let ($($field,)*) = value;
                    let mut out = Vec::new();
                    tuple_shrink_each!(out, (), ($(($name, $field),)*));
                    out
                }
            }
        };
    }
    tuple_strategy!((A, a));
    tuple_strategy!((A, a), (B, b));
    tuple_strategy!((A, a), (B, b), (C, c));
    tuple_strategy!((A, a), (B, b), (C, c), (D, d));
    tuple_strategy!((A, a), (B, b), (C, c), (D, d), (E, e));
    tuple_strategy!((A, a), (B, b), (C, c), (D, d), (E, e), (F, f));

    /// `Just`-style constant strategy, handy for composition.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between same-valued strategies ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        variants: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        pub fn new(variants: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!variants.is_empty(), "prop_oneof! needs >= 1 variant");
            Self { variants }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.0.random_range(0..self.variants.len());
            self.variants[i].sample(rng)
        }
        /// Every variant may propose simplifications; a candidate outside
        /// the producing variant's own domain is harmless because the
        /// runner only keeps candidates that still fail the test.
        fn shrink(&self, value: &T) -> Vec<T> {
            self.variants.iter().flat_map(|s| s.shrink(value)).collect()
        }
    }

    /// Type-erase a strategy for [`Union`] storage.
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing `Vec`s whose length is drawn from `size`.
    pub struct VecStrategy<S: Strategy> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.0.random_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
        /// Shorter first (halve toward the minimum length, then drop each
        /// single element), then element-wise shrinks in place.
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let min_len = self.size.start;
            let mut out = Vec::new();
            if value.len() > min_len {
                let half = min_len.max(value.len() / 2);
                if half < value.len() {
                    out.push(value[..half].to_vec());
                }
                for i in 0..value.len() {
                    let mut t = value.clone();
                    t.remove(i);
                    if t.len() >= min_len {
                        out.push(t);
                    }
                }
            }
            for i in 0..value.len() {
                for cand in self.element.shrink(&value[i]) {
                    let mut t = value.clone();
                    t[i] = cand;
                    out.push(t);
                }
            }
            out
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Entry macro: expands each `fn name(arg in strategy, ...) { body }` item
/// into a plain `#[test]` that drives [`test_runner::run`] (sampling +
/// shrink-on-failure) over the tuple of argument strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run(
                stringify!($name),
                $cfg,
                ($(($strat),)*),
                |($($arg,)*)| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Assertion macros: panic on failure (the runner shrinks), reject on assume.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::minimize;
    use crate::test_runner::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn samples_stay_in_range(x in 3usize..9, y in 0u64..5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn assume_rejects(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec((0usize..4, 0usize..4), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (a, b) in v {
                prop_assert!(a < 4 && b < 4);
            }
        }

        #[test]
        fn oneof_samples_stay_in_some_variant(x in prop_oneof![0usize..5, 10usize..15]) {
            prop_assert!((0..5).contains(&x) || (10..15).contains(&x));
        }
    }

    // -- shrink-behavior pins ------------------------------------------
    // These nail down the shrinking contract the differential flow tests
    // rely on for debuggable failures: candidates move strictly toward
    // "simpler", and the greedy minimize loop lands on the boundary value.

    #[test]
    fn int_shrink_moves_toward_range_start() {
        let strat = 3usize..9;
        let cands = strat.shrink(&8);
        assert!(cands.contains(&3), "range start missing: {cands:?}");
        assert!(cands.iter().all(|&c| (3..8).contains(&c)), "{cands:?}");
        assert!(strat.shrink(&3).is_empty(), "start value must not shrink");
    }

    #[test]
    fn minimize_finds_smallest_failing_int() {
        let (min, steps) = minimize(&(0usize..100), 93, &|v| *v >= 7);
        assert_eq!(min, 7);
        assert!(steps > 0);
    }

    #[test]
    fn minimize_shrinks_vec_to_boundary() {
        let strat = crate::collection::vec(0usize..10, 0..8);
        let fails = |v: &Vec<usize>| v.iter().sum::<usize>() >= 5;
        let (min, _) = minimize(&strat, vec![9, 3, 2], &fails);
        assert_eq!(min, vec![5]);
    }

    #[test]
    fn vec_shrink_respects_minimum_length() {
        let strat = crate::collection::vec(0usize..10, 2..6);
        for cand in strat.shrink(&vec![4, 1, 7]) {
            assert!(cand.len() >= 2, "shrank below min length: {cand:?}");
        }
    }

    #[test]
    fn tuple_shrink_varies_one_field_at_a_time() {
        let strat = (0usize..10, 0usize..10);
        for (a, b) in strat.shrink(&(4, 6)) {
            assert!((a == 4) ^ (b == 6) || (a < 4 && b == 6) || (a == 4 && b < 6));
            assert!(a <= 4 && b <= 6);
            assert!((a, b) != (4, 6));
        }
        assert!(!strat.shrink(&(4, 6)).is_empty());
    }

    #[test]
    fn oneof_covers_every_variant_and_shrinks_across_them() {
        let strat = prop_oneof![0usize..5, 10usize..15];
        let mut rng = TestRng::deterministic("oneof_coverage");
        let (mut low, mut high) = (false, false);
        for _ in 0..200 {
            match strat.sample(&mut rng) {
                v if v < 5 => low = true,
                v => {
                    assert!((10..15).contains(&v));
                    high = true;
                }
            }
        }
        assert!(low && high, "union never picked one of its variants");
        // A value sampled from the second variant still shrinks toward
        // the first variant's smaller domain.
        let (min, _) = minimize(&strat, 13, &|v| *v >= 3);
        assert_eq!(min, 3);
    }

    #[test]
    fn runner_reports_minimal_input() {
        let err = std::panic::catch_unwind(|| {
            crate::test_runner::run(
                "boundary_hunt",
                ProptestConfig::with_cases(64),
                (0usize..1000,),
                |(x,)| {
                    prop_assert!(x < 40, "x too big: {x}");
                    Ok(())
                },
            );
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("(40,)"), "not minimal: {msg}");
        assert!(msg.contains("x too big: 40"), "{msg}");
    }
}
