//! Offline API-compatible shim for the subset of `proptest` this
//! workspace uses: the `proptest!` macro over `arg in strategy` bindings,
//! range and tuple strategies, `collection::vec`, `ProptestConfig`, and
//! the `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Semantics: each test runs `cases` deterministic pseudo-random cases
//! (seeded from the test name, so failures reproduce across runs). There
//! is no shrinking — a failing case panics with the sampled values left to
//! inspection via the assertion message.

pub mod test_runner {
    /// Per-test configuration.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Why a single case did not run to completion.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject,
    }

    /// Deterministic per-test RNG: seeded from the test's name via FNV-1a.
    pub struct TestRng(pub rand::rngs::StdRng);

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            use rand::SeedableRng;
            Self(rand::rngs::StdRng::seed_from_u64(h))
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A source of random values of one type.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.0.random_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*) {
                type Value = ($($name::Value,)*);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)*) = self;
                    ($($name.sample(rng),)*)
                }
            }
        };
    }
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);

    /// `Just`-style constant strategy, handy for composition.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing `Vec`s whose length is drawn from `size`.
    pub struct VecStrategy<S: Strategy> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.0.random_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Entry macro: expands each `fn name(arg in strategy, ...) { body }` item
/// into a plain `#[test]` running `cases` sampled executions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                let mut __one_case = move || -> Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                };
                match __one_case() {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject) => continue,
                }
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

/// Assertion macros: panic on failure (no shrinking), reject on assume.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn samples_stay_in_range(x in 3usize..9, y in 0u64..5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn assume_rejects(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec((0usize..4, 0usize..4), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (a, b) in v {
                prop_assert!(a < 4 && b < 4);
            }
        }
    }
}
