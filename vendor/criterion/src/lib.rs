//! Offline API-compatible shim for the subset of `criterion` this
//! workspace uses. The build environment has no registry access, so this
//! provides the same macros/builder surface but measures with plain
//! wall-clock timing: each benchmark runs a short warm-up, then
//! `sample_size` timed batches, and prints mean time per iteration.
//! Statistical analysis, HTML reports, and comparison baselines are out of
//! scope — swap in the real criterion for those.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation; printed alongside timings.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    cfg: &'a Config,
    /// Mean nanoseconds per iteration of the most recent `iter` call.
    last_ns: f64,
}

impl Bencher<'_> {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget elapses at least once.
        #[allow(clippy::disallowed_methods)] // measuring wall-clock is criterion's job
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.cfg.warm_up_time {
                break;
            }
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let samples = self.cfg.sample_size.max(1) as u64;
        let budget_per_sample = self.cfg.measurement_time / self.cfg.sample_size.max(1) as u32;
        for _ in 0..samples {
            #[allow(clippy::disallowed_methods)] // measuring wall-clock is criterion's job
            let start = Instant::now();
            let mut n = 0u64;
            loop {
                black_box(routine());
                n += 1;
                if start.elapsed() >= budget_per_sample {
                    break;
                }
            }
            total += start.elapsed();
            iters += n;
        }
        self.last_ns = total.as_nanos() as f64 / iters.max(1) as f64;
    }
}

#[derive(Clone, Debug)]
struct Config {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
            sample_size: 10,
        }
    }
}

/// Top-level benchmark driver (builder + runner).
#[derive(Default)]
pub struct Criterion {
    cfg: Config,
}

impl Criterion {
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.cfg.warm_up_time = t;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.cfg.measurement_time = t;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.cfg.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&self.cfg, name, None, |b| f(b));
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.cfg, &id.name, None, |b| f(b, input));
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            cfg: &self.cfg,
            name: name.into(),
            throughput: None,
        }
    }
}

/// Group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    cfg: &'a Config,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(self.cfg, &full, self.throughput, |b| f(b));
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.name);
        run_one(self.cfg, &full, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one(
    cfg: &Config,
    name: &str,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher { cfg, last_ns: 0.0 };
    f(&mut b);
    let per_iter = b.last_ns;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  {:.3} Melem/s", n as f64 / per_iter * 1e3)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!(
                "  {:.3} MiB/s",
                n as f64 / per_iter * 1e9 / (1024.0 * 1024.0)
            )
        }
        _ => String::new(),
    };
    println!("{name:<48} {:>12.1} ns/iter{rate}", per_iter);
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)*
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(2);
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_with_input() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(2);
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("f", 4), &4u32, |b, &x| {
            b.iter(|| x * 2);
        });
        g.finish();
    }
}
