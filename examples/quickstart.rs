//! Quickstart: build a HammingMesh, inspect it, price it, and measure one
//! collective on the packet simulator.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hammingmesh::prelude::*;

fn main() {
    // An 8x8 Hx2Mesh: 8x8 boards of 2x2 accelerators = 256 accelerators.
    let params = HxMeshParams::square(2, 8);
    let net = params.build();
    println!(
        "built {}: {} accelerators, {} switches, {} links",
        net.name,
        net.num_ranks(),
        net.topo.count_switches(),
        net.topo.num_links()
    );

    // Price one plane x 4 (the paper charges switches, DAC and AoC cables).
    let inv = Inventory::from_network(&net, 4);
    println!(
        "bill of materials (4 planes): {} switches, {} DAC, {} AoC -> ${:.2} M",
        inv.switches,
        inv.dac_cables,
        inv.aoc_cables,
        inv.cost_musd(&Prices::default())
    );

    // Measure a 4 MiB allreduce with the paper's two algorithms, on both
    // simulation backends: the packet engine is the ground truth, the
    // flow-level fast path trades per-packet fidelity for orders of
    // magnitude more speed at scale (see README "Two simulation engines").
    for algo in [AllreduceAlgo::DisjointRings, AllreduceAlgo::Torus2D] {
        for engine in EngineKind::all() {
            let m = experiments::allreduce_bandwidth_on(&net, algo, 4 << 20, engine);
            println!(
                "{algo:?} on {engine} engine: {:.1} us simulated, {:.1}% of the allreduce optimum",
                m.time_ps as f64 / 1e6,
                m.bw_fraction * 100.0
            );
            assert!(m.clean, "simulation must deliver every message");
        }
    }

    // And an alltoall, which HxMesh deliberately under-provisions (§II-D:
    // global bandwidth is rarely needed by deep learning workloads).
    let m = experiments::alltoall_bandwidth(&net, 64 << 10, 2);
    println!(
        "alltoall: {:.1}% of injection bandwidth (cut bound for Hx2Mesh: 25%)",
        m.bw_fraction * 100.0
    );
}
