//! Operating an HxMesh cluster: allocate a mix of training jobs, survive
//! board failures through virtual sub-meshes (§III-E / Fig. 5), and watch
//! utilization.
//!
//! ```sh
//! cargo run --release --example cluster_ops
//! ```

use hammingmesh::hxalloc::experiments::{allocate_mix, fig8_strategies};
use hammingmesh::hxalloc::workload::{JobMix, JobSizeDistribution};
use hammingmesh::prelude::*;

fn main() {
    // Fig. 5's scenario: a 4x4 Hx2Mesh with three failed boards.
    let mut mesh = BoardMesh::new(4, 4);
    mesh.fail_board(2, 1);
    mesh.fail_board(2, 3);
    mesh.fail_board(3, 2);
    println!(
        "4x4 mesh, 3 failed boards -> {} working",
        mesh.working_boards()
    );

    // A 3x3 job still fits: the rows need not be contiguous, they only
    // need a common set of 3 free columns (a virtual sub-HxMesh).
    let p = mesh
        .allocate(1, 3, 3, Heuristics::all())
        .expect("3x3 fits despite failures");
    println!("3x3 job placed on rows {:?} x cols {:?}", p.rows, p.cols);
    let p2 = mesh.allocate(2, 1, 4, Heuristics::all());
    println!("1x4 job: {p2:?}");
    mesh.check_invariants().unwrap();
    println!(
        "utilization of working boards: {:.0}%",
        mesh.utilization() * 100.0
    );

    // Now a production-size scenario: a 16x16 Hx2Mesh filled with a random
    // MLaaS job mix under the strongest heuristic stack.
    println!("\n16x16 Hx2Mesh, random job mix:");
    let dist = JobSizeDistribution::for_cluster(256);
    let mix = JobMix::draw(&dist, 256, 2024);
    println!(
        "  {} jobs totalling {} boards",
        mix.num_jobs(),
        mix.total_boards()
    );
    let strat = *fig8_strategies().last().unwrap();
    let mut mesh = BoardMesh::new(16, 16);
    let util = allocate_mix(&mut mesh, &mix, strat);
    println!("  strategy {:?}", strat.name);
    println!("  utilization: {:.1}%", util * 100.0);

    // Inspect where the largest job landed and its upper-tree traffic.
    if let Some(p) = mesh.placements().max_by_key(|p| p.boards()) {
        println!(
            "  largest job: {} boards on rows {:?} cols {:?}; alltoall upper-tree share {:.0}%",
            p.boards(),
            p.rows,
            p.cols,
            mesh.upper_traffic_alltoall(&p.rows, &p.cols) * 100.0
        );
    }
}
