//! Explore the Table II design space: build every topology at a reduced
//! scale, and print its structure, price (at paper scale), diameter, and a
//! quick measured bandwidth snapshot.
//!
//! ```sh
//! cargo run --release --example topology_explorer
//! ```

use hammingmesh::prelude::*;

fn main() {
    println!(
        "{:<24} {:>6} {:>8} {:>7} {:>10} {:>9} {:>9}",
        "topology (256 accel)", "switch", "links", "diam", "cost[M$]*", "a2a BW%", "ared BW%"
    );
    let paper_costs = hammingmesh::hxcost::table2_entries(ClusterSize::Small);
    for (i, choice) in TopologyChoice::all().into_iter().enumerate() {
        let net = choice.build_scaled(256);
        // BFS diameter over a sample of endpoints.
        let d = net.topo.bfs_hops(net.endpoints[0]);
        let diam = net.endpoints.iter().map(|e| d[e.idx()]).max().unwrap();
        let a2a = experiments::alltoall_bandwidth(&net, 32 << 10, 2);
        let ar = experiments::allreduce_bandwidth(&net, AllreduceAlgo::DisjointRings, 16 << 20);
        println!(
            "{:<24} {:>6} {:>8} {:>7} {:>10.1} {:>8.1} {:>8.1}",
            choice.name(),
            net.topo.count_switches(),
            net.topo.num_links(),
            diam,
            paper_costs[i].cost_musd(),
            a2a.bw_fraction * 100.0,
            ar.bw_fraction * 100.0
        );
    }
    println!("\n* cost shown for the paper's 1k-accelerator configuration (Table II).");
    println!(
        "The tradeoff of Fig. 1: HxMeshes give up global (alltoall) bandwidth for an\n\
         order of magnitude lower cost while keeping allreduce bandwidth high."
    );
}
