//! Simulate one (scaled-down) GPT-3 training iteration on three different
//! interconnects and compare, reproducing the §V-B5 experiment's shape:
//! the fat tree is fastest, HammingMesh close behind at a fraction of the
//! cost, the torus far behind.
//!
//! ```sh
//! cargo run --release --example train_gpt3
//! ```

use hammingmesh::hxcollect::simapp::ScheduleApp;
use hammingmesh::hxmodels::analytic::{estimate_iteration, TopologyPerf};
use hammingmesh::hxmodels::schedule::{build_iteration, ScaledConfig};
use hammingmesh::hxmodels::DnnWorkload;
use hammingmesh::prelude::*;

fn main() {
    let gpt3 = DnnWorkload::gpt3();
    println!(
        "GPT-3 (paper config): D={} P={} O={} = {} accelerators, {:.1} ms compute/iter",
        gpt3.parallelism.d,
        gpt3.parallelism.p,
        gpt3.parallelism.o,
        gpt3.parallelism.total(),
        gpt3.compute_ps as f64 / 1e9
    );

    // 1) Full-scale analytic estimates (α-β model + Table II bandwidths).
    println!(
        "\nfull-scale iteration estimates (paper: FT 34.8, Hx2 41.7, Hx4 49.9, torus 72.2 ms):"
    );
    for t in TopologyPerf::table2_small() {
        let e = estimate_iteration(&gpt3, &t);
        println!(
            "  {:<24} {:>7.1} ms  (exposed comm {:>6.1} ms, network ${:.1} M)",
            t.name,
            e.iteration_ms(),
            e.exposed_ps as f64 / 1e9,
            t.cost_musd
        );
    }

    // 2) Scaled-down packet-level simulation: 16 accelerators, volumes
    //    shrunk 500x, same D x P x O structure.
    let mut cfg = ScaledConfig::fit(&gpt3, 16);
    cfg.bytes_scale = 0.002;
    let sched = build_iteration(&gpt3, &cfg);
    println!(
        "\nscaled simulation: D={} P={} O={} ({} ranks, {} schedule ops)",
        cfg.parallelism.d,
        cfg.parallelism.p,
        cfg.parallelism.o,
        cfg.parallelism.total(),
        sched.num_ops()
    );
    let nets = vec![
        HxMeshParams::square(2, 2).build(),
        TorusParams {
            cols: 4,
            rows: 4,
            board: 2,
        }
        .build(),
        FatTreeParams::scaled_nonblocking(16, 16).build(),
    ];
    for net in &nets {
        let mut app = ScheduleApp::new(&sched);
        let stats = Engine::new(net, SimConfig::default()).run(&mut app);
        assert!(stats.clean());
        println!(
            "  {:<28} {:>9.3} ms simulated ({} packets forwarded)",
            net.name,
            stats.finish_ps as f64 / 1e9,
            stats.packets_forwarded
        );
    }
}
