//! Workspace-root companion crate: hosts the runnable examples
//! (`examples/`) and the cross-crate integration tests (`tests/`).
//! The library surface simply re-exports the facade crate.

pub use hammingmesh;
